// Package proto defines the TreeP wire protocol: the datagram messages the
// overlay exchanges and their compact binary encoding.
//
// The paper's routing tables store "(ID, IP, Port)" tuples (§III.c) and the
// overlay runs over UDP (§III); each message here fits comfortably in a
// single datagram. The same message structs travel by reference through the
// simulator (for speed) and through the codec over real UDP sockets — the
// codec round-trip is property-tested so the two paths cannot diverge.
package proto

import (
	"fmt"
	"time"

	"treep/internal/idspace"
)

// MsgType discriminates message bodies on the wire.
type MsgType uint8

// Message type identifiers. The zero value is invalid so that a zeroed
// buffer never parses as a valid message.
const (
	TInvalid MsgType = iota
	THello
	TPing
	TPong
	TJoinRequest
	TJoinRedirect
	TJoinAccept
	TElectionCall
	TParentClaim
	TChildReport
	TPromoteGrant
	TDemote
	TBusLinkReq
	TBusLinkAck
	TLookupRequest
	TLookupReply
	TDHTStore
	TDHTStoreAck
	TDHTFetch
	TDHTFetchReply
	TReparent
	TLeave
	TDHTReplicate
	TDHTReplicateAck
	TRingProbe
	TRingProbeAck
	TMergeIntro
	tMaxMsgType // sentinel, keep last
)

var msgTypeNames = [...]string{
	TInvalid:         "invalid",
	THello:           "hello",
	TPing:            "ping",
	TPong:            "pong",
	TJoinRequest:     "join-request",
	TJoinRedirect:    "join-redirect",
	TJoinAccept:      "join-accept",
	TElectionCall:    "election-call",
	TParentClaim:     "parent-claim",
	TChildReport:     "child-report",
	TPromoteGrant:    "promote-grant",
	TDemote:          "demote",
	TBusLinkReq:      "bus-link-req",
	TBusLinkAck:      "bus-link-ack",
	TLookupRequest:   "lookup-request",
	TLookupReply:     "lookup-reply",
	TDHTStore:        "dht-store",
	TDHTStoreAck:     "dht-store-ack",
	TDHTFetch:        "dht-fetch",
	TDHTFetchReply:   "dht-fetch-reply",
	TReparent:        "reparent",
	TLeave:           "leave",
	TDHTReplicate:    "dht-replicate",
	TDHTReplicateAck: "dht-replicate-ack",
	TRingProbe:       "ring-probe",
	TRingProbeAck:    "ring-probe-ack",
	TMergeIntro:      "merge-intro",
}

// String implements fmt.Stringer.
func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) && msgTypeNames[t] != "" {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Message is implemented by every wire message.
type Message interface {
	// Type returns the wire discriminator.
	Type() MsgType
	// EncodedSize returns the exact number of body bytes the message
	// encodes to (excluding the 3-byte header). It is computed analytically
	// so the simulator can account bytes without serialising.
	EncodedSize() int
	encodeBody(w *writer)
	decodeBody(r *reader)
}

// NodeRef names a peer: its coordinate in the ID space, its transport
// address, the highest level it occupies, and a quantised capability score.
// The score rides along so that a node learning about a peer for the first
// time can immediately rank it for elections (§III.d: "When two nodes
// communicate for the first time they exchange information about their
// resources and state").
type NodeRef struct {
	ID       idspace.ID
	Addr     uint64
	MaxLevel uint8
	Score    uint16 // capability quantised to [0, 65535]
}

const nodeRefSize = 8 + 8 + 1 + 2

// IsZero reports whether the ref is the absent-node sentinel.
func (r NodeRef) IsZero() bool { return r.Addr == 0 }

// String implements fmt.Stringer.
func (r NodeRef) String() string {
	if r.IsZero() {
		return "ref(-)"
	}
	return fmt.Sprintf("ref(%s@%d lvl%d)", r.ID, r.Addr, r.MaxLevel)
}

// QuantizeScore maps a capability score in [0,1] to the wire representation.
func QuantizeScore(s float64) uint16 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 65535
	}
	return uint16(s * 65535)
}

// UnquantizeScore is the inverse of QuantizeScore.
func UnquantizeScore(q uint16) float64 { return float64(q) / 65535 }

// Region mirrors idspace.Region on the wire (a parent's tessellation).
type Region struct {
	Lo, Hi idspace.ID
}

const regionSize = 16

// ToIDSpace converts to the idspace representation.
func (r Region) ToIDSpace() idspace.Region { return idspace.Region{Lo: r.Lo, Hi: r.Hi} }

// FromIDSpace converts from the idspace representation.
func FromIDSpace(r idspace.Region) Region { return Region{Lo: r.Lo, Hi: r.Hi} }

// EntryFlag describes the role of a routing-table entry in an update.
type EntryFlag uint8

// Entry roles. A single entry may carry several flags (a level-0 neighbour
// that is also the sender's parent).
const (
	FNeighbor EntryFlag = 1 << iota // same-level neighbour
	FParent                         // sender's parent
	FChild                          // sender's child
	FSuperior                       // member of sender's superior node list
	FIndirect                       // neighbour-of-neighbour (indirect)
)

// Entry is one routing-table item exchanged in updates: the peer, the level
// the entry belongs to, its role flags, a version used to ship only
// out-of-date data (§III.d), and the entry's age at the provider. Shipping
// the age keeps staleness cumulative across hops — without it, every
// re-advertisement would reset a dead node's timestamp and gossip chains
// could keep it alive far beyond its TTL.
type Entry struct {
	Ref     NodeRef
	Level   uint8
	Flags   EntryFlag
	Version uint32
	// AgeDs is the time since the provider last validated this entry, in
	// deciseconds (6553 s max, far beyond any entry TTL).
	AgeDs uint16
}

const entrySize = nodeRefSize + 1 + 1 + 4 + 2

// AgeDuration converts AgeDs to a duration.
func (e Entry) AgeDuration() time.Duration {
	return time.Duration(e.AgeDs) * 100 * time.Millisecond
}

// AgeFrom computes the wire age for an entry validated at the given
// instant (clamped to the uint16 range).
func AgeFrom(now, validated time.Duration) uint16 {
	if validated >= now {
		return 0
	}
	ds := (now - validated) / (100 * time.Millisecond)
	if ds > 65535 {
		return 65535
	}
	return uint16(ds)
}

// --- Message bodies -------------------------------------------------------

// Hello opens a first contact: it advertises the sender and its parent
// capacity so the receiver can populate its tables (§III.d).
type Hello struct {
	From        NodeRef
	MaxChildren uint8
}

// Ping is the keep-alive. Entries piggyback routing-table deltas on the
// keep-alive exchange exactly as §III.d describes.
type Ping struct {
	From    NodeRef
	Seq     uint32
	Entries []Entry
}

// Pong answers a Ping, optionally carrying a delta back.
type Pong struct {
	From    NodeRef
	Seq     uint32
	Entries []Entry
}

// JoinRequest asks a bootstrap peer to place the sender at level 0.
type JoinRequest struct {
	From NodeRef
}

// JoinRedirect points a joining node at a peer closer to its coordinate.
type JoinRedirect struct {
	From   NodeRef
	Closer NodeRef
}

// JoinAccept tells the joining node its level-0 neighbours and (if known)
// the level-1 parent responsible for its coordinate.
type JoinAccept struct {
	From        NodeRef
	Left, Right NodeRef // either may be zero at the space edges
	Parent      NodeRef // may be zero when no hierarchy exists yet
}

// ElectionCall announces that the sender triggered a parent election for
// the given level (§III.b: fired when a node reaches degree 2 without a
// parent). Receivers start their capability countdowns.
type ElectionCall struct {
	From  NodeRef
	Level uint8
}

// ParentClaim is the election winner's announcement: "it will signal to its
// neighbours that it is their new parent" (§III.b).
type ParentClaim struct {
	From   NodeRef
	Level  uint8
	Region Region // tessellation the new parent covers
}

// ChildReport is the child→parent heartbeat; parents delete children that
// stop reporting (§III.a: "If they do not report regularly they will be
// simply be deleted from its routing table").
type ChildReport struct {
	From   NodeRef
	Degree uint8 // child's current level-0 degree, for parent stats
}

// PromoteGrant promotes a child to the sender's level, handing it a
// tessellation (B+tree-style split when a parent exceeds its capacity) and
// the bus neighbours to link with.
type PromoteGrant struct {
	From        NodeRef
	Level       uint8
	Region      Region
	Left, Right NodeRef
}

// Demote announces that the sender leaves the given level and which bus
// neighbour inherits its tessellation.
type Demote struct {
	From      NodeRef
	Level     uint8
	Successor NodeRef // may be zero when the level empties
}

// BusLinkReq asks a same-level node to (re)establish bus neighbour links.
type BusLinkReq struct {
	From  NodeRef
	Level uint8
}

// BusLinkAck confirms a bus link and shares the sender's own bus neighbours
// (the "direct and indirect neighbours" of §III.c).
type BusLinkAck struct {
	From        NodeRef
	Level       uint8
	Left, Right NodeRef
}

// Algo selects the lookup algorithm of §III.f.
type Algo uint8

// Lookup algorithms.
const (
	AlgoG    Algo = iota // greedy
	AlgoNG               // non-greedy: first improving neighbour
	AlgoNGSA             // non-greedy with fall-back alternates
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case AlgoG:
		return "G"
	case AlgoNG:
		return "NG"
	case AlgoNGSA:
		return "NGSA"
	}
	return fmt.Sprintf("algo(%d)", uint8(a))
}

// LookupRequest resolves the node responsible for (nearest to) Target.
// NGSA accumulates alternates: untried candidate hops that a dead-ended
// request can fall back to, "at the expense of adding data to the request"
// (§III.f).
type LookupRequest struct {
	Origin     NodeRef // reply destination
	Target     idspace.ID
	ReqID      uint64
	TTL        uint8
	Hops       uint8
	Algo       Algo
	Alternates []NodeRef
}

// LookupStatus is the outcome carried by a LookupReply.
type LookupStatus uint8

// Lookup outcomes.
const (
	LookupFound    LookupStatus = iota // Best is the target or its owner
	LookupNotFound                     // routing dead-ended
)

// LookupReply terminates a lookup.
type LookupReply struct {
	From   NodeRef
	ReqID  uint64
	Status LookupStatus
	Best   NodeRef
	Hops   uint8
}

// StoreStatus is the outcome of a DHTStore at the owner.
type StoreStatus uint8

// Store outcomes.
const (
	// StoreOK: the record was accepted; the ack carries the new version.
	StoreOK StoreStatus = iota
	// StoreConflict: a conditional store's base version no longer matches;
	// the ack carries the owner's current version so the writer can retry
	// its read-modify-write.
	StoreConflict
)

// DHTStore asks the receiver (the key's owner, found via lookup) to accept
// a new version of the record. The owner assigns the version: an
// unconditional store becomes current-version+1; a conditional store
// (Cond=true) is accepted only while the owner's current version equals
// Base, which gives read-modify-write writers compare-and-swap semantics
// instead of lost updates.
type DHTStore struct {
	From  NodeRef
	ReqID uint64
	Key   idspace.ID
	Value []byte
	Base  uint64
	Cond  bool
}

// DHTStoreAck answers a DHTStore with the outcome and the record's
// resulting (or, on conflict, current) version and origin.
type DHTStoreAck struct {
	From    NodeRef
	ReqID   uint64
	Status  StoreStatus
	Version uint64
	Origin  uint64
}

// DHTFetch fetches the record for Key from the receiver. Local asks for
// the receiver's own store only; an owner serving a non-local fetch that
// misses may consult its replica neighbours (with Local sub-fetches)
// before answering, repairing itself from a surviving replica.
type DHTFetch struct {
	From  NodeRef
	ReqID uint64
	Key   idspace.ID
	Local bool
}

// DHTFetchReply returns the record (or Found=false) with its version.
type DHTFetchReply struct {
	From    NodeRef
	ReqID   uint64
	Found   bool
	Value   []byte
	Version uint64
	Origin  uint64
}

// DHTReplicate pushes a fully-versioned record copy to the receiver, which
// merges it by (version, origin) — newest wins, origin breaks ties — and
// never re-versions it. Replica maintenance and ownership handoff ride on
// this message; ReqID zero means fire-and-forget, non-zero requests a
// DHTReplicateAck (the handoff path frees the sender's copy on ack).
// Cache marks a hot-key fan-out copy: the receiver files it in its
// bounded TTL'd read cache and must NOT adopt it as an authoritative
// replica — the sender remains the owner and the copy expires on its
// own. Only the sender knows that intent, which is why it rides the
// wire instead of being re-derived at the receiver.
type DHTReplicate struct {
	From    NodeRef
	ReqID   uint64
	Key     idspace.ID
	Value   []byte
	Version uint64
	Origin  uint64
	Cache   bool
}

// DHTReplicateAck confirms a replica push.
type DHTReplicateAck struct {
	From   NodeRef
	ReqID  uint64
	Stored bool
}

// Leave announces a graceful departure: the receiver drops the sender from
// every table immediately instead of waiting out the entry TTL. Without it
// every clean shutdown is indistinguishable from a crash and costs the
// overlay a full failure-detection round.
type Leave struct {
	From NodeRef
}

// RingProbe ring-walks toward a suspected gap beside Origin. The origin
// sends it to its best known contact on the probed side; each receiver
// that knows a node strictly between the origin and itself forwards the
// probe there (the interval shrinks every hop, so the walk terminates),
// and the receiver with nothing in between is the far edge of the gap —
// it answers the origin with a RingProbeAck and a greeting, closing the
// ring. From is the current forwarder; Origin survives across hops.
type RingProbe struct {
	From   NodeRef
	Origin NodeRef
	// Left is the probed side from the origin's perspective: true means
	// the probe seeks the nearest node with an ID below Origin.ID.
	Left bool
	TTL  uint8
	// AgeDs is how stale the forwarder's knowledge of Origin already is
	// (deciseconds). Beyond the first hop Origin is hearsay; the age
	// accumulates so a dead origin cannot be re-minted fresh by its own
	// probe echoing through the overlay.
	AgeDs uint16
}

// RingProbeAck is the far edge's answer to the probing origin: "I am your
// nearest surviving neighbour on that side". It is a direct message, so
// its arrival alone gives the origin a fresh link to the edge.
type RingProbeAck struct {
	From NodeRef
	// Left echoes the probed side.
	Left bool
	// Hops is how many forwards the probe took (repair-latency telemetry).
	Hops uint8
}

// MergeIntro introduces two nodes that are probably ID-adjacent but
// unaware of each other: when a node gains a brand-new direct ring
// contact on one side while already holding a different fresh neighbour
// there, the two may belong to rings that formed independently — it sends
// each a MergeIntro naming the other. Receivers greet the named peer
// unless it is already a fresh direct contact, so the cascade zips two
// interleaved rings together and halts exactly where the rings are
// already merged.
type MergeIntro struct {
	From NodeRef
	Peer NodeRef
	// AgeDs is how stale the sender's knowledge of Peer is (deciseconds);
	// introductions are hearsay and must not re-mint freshness.
	AgeDs uint16
}

// Reparent tells a child that responsibility for it moved to NewParent
// (after a B+tree-style split promoted a sibling, or because the sender is
// demoting and hands its tessellation to a bus neighbour).
type Reparent struct {
	From      NodeRef
	NewParent NodeRef
	// AgeDs is how stale the sender's knowledge of NewParent already is
	// (deciseconds). Redirect targets are hearsay; without the age a
	// cluster of confused nodes can re-mint freshness for a dead node
	// indefinitely by redirecting each other to it.
	AgeDs uint16
}

// Compile-time interface checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Ping)(nil)
	_ Message = (*Pong)(nil)
	_ Message = (*JoinRequest)(nil)
	_ Message = (*JoinRedirect)(nil)
	_ Message = (*JoinAccept)(nil)
	_ Message = (*ElectionCall)(nil)
	_ Message = (*ParentClaim)(nil)
	_ Message = (*ChildReport)(nil)
	_ Message = (*PromoteGrant)(nil)
	_ Message = (*Demote)(nil)
	_ Message = (*BusLinkReq)(nil)
	_ Message = (*BusLinkAck)(nil)
	_ Message = (*LookupRequest)(nil)
	_ Message = (*LookupReply)(nil)
	_ Message = (*DHTStore)(nil)
	_ Message = (*DHTStoreAck)(nil)
	_ Message = (*DHTFetch)(nil)
	_ Message = (*DHTFetchReply)(nil)
	_ Message = (*DHTReplicate)(nil)
	_ Message = (*DHTReplicateAck)(nil)
	_ Message = (*Reparent)(nil)
	_ Message = (*Leave)(nil)
	_ Message = (*RingProbe)(nil)
	_ Message = (*RingProbeAck)(nil)
	_ Message = (*MergeIntro)(nil)
)

// --- service plane interfaces ----------------------------------------------

// SvcRequest is a message the generic service plane (internal/svc) can
// dispatch as a request: it carries a request id for response matching and
// a From ref the plane stamps at send time.
type SvcRequest interface {
	Message
	// SvcID returns the request id.
	SvcID() uint64
	// SetSvc stamps the request id and sender identity before transmission.
	SetSvc(id uint64, from NodeRef)
}

// SvcResponse is a message that answers a SvcRequest: the plane matches it
// to the pending call by id and stamps the responder identity on send.
type SvcResponse interface {
	Message
	// SvcID returns the id of the request this message answers.
	SvcID() uint64
	// SetSvc stamps the answered id and responder identity.
	SetSvc(id uint64, from NodeRef)
}

// SvcID implements SvcRequest.
func (m *DHTStore) SvcID() uint64 { return m.ReqID }

// SetSvc implements SvcRequest.
func (m *DHTStore) SetSvc(id uint64, from NodeRef) { m.ReqID, m.From = id, from }

// SvcID implements SvcResponse.
func (m *DHTStoreAck) SvcID() uint64 { return m.ReqID }

// SetSvc implements SvcResponse.
func (m *DHTStoreAck) SetSvc(id uint64, from NodeRef) { m.ReqID, m.From = id, from }

// SvcID implements SvcRequest.
func (m *DHTFetch) SvcID() uint64 { return m.ReqID }

// SetSvc implements SvcRequest.
func (m *DHTFetch) SetSvc(id uint64, from NodeRef) { m.ReqID, m.From = id, from }

// SvcID implements SvcResponse.
func (m *DHTFetchReply) SvcID() uint64 { return m.ReqID }

// SetSvc implements SvcResponse.
func (m *DHTFetchReply) SetSvc(id uint64, from NodeRef) { m.ReqID, m.From = id, from }

// SvcID implements SvcRequest.
func (m *DHTReplicate) SvcID() uint64 { return m.ReqID }

// SetSvc implements SvcRequest.
func (m *DHTReplicate) SetSvc(id uint64, from NodeRef) { m.ReqID, m.From = id, from }

// SvcID implements SvcResponse.
func (m *DHTReplicateAck) SvcID() uint64 { return m.ReqID }

// SetSvc implements SvcResponse.
func (m *DHTReplicateAck) SetSvc(id uint64, from NodeRef) { m.ReqID, m.From = id, from }

// Compile-time service-plane interface checks.
var (
	_ SvcRequest  = (*DHTStore)(nil)
	_ SvcResponse = (*DHTStoreAck)(nil)
	_ SvcRequest  = (*DHTFetch)(nil)
	_ SvcResponse = (*DHTFetchReply)(nil)
	_ SvcRequest  = (*DHTReplicate)(nil)
	_ SvcResponse = (*DHTReplicateAck)(nil)
)
