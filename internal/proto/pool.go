package proto

import "sync"

// Recyclable is implemented by message types that can return to a pool
// once the delivery layer is finished with them. The keep-alive traffic
// (Ping/Pong with piggybacked entries, child reports) dominates a
// steady-state overlay's message volume; pooling those three types makes
// the per-message hot path allocation-free in the simulator, where
// payloads travel by reference and the network knows exactly when a
// datagram's life ends.
//
// Contract: a recyclable message is sent to exactly one destination and
// must not be retained (nor any slice it carries) by a receiving handler
// after the handler returns. The core protocol obeys this: entry slices
// are consumed into routing tables by value during handling.
type Recyclable interface{ Recycle() }

var (
	pingPool        = sync.Pool{New: func() interface{} { return new(Ping) }}
	pongPool        = sync.Pool{New: func() interface{} { return new(Pong) }}
	childReportPool = sync.Pool{New: func() interface{} { return new(ChildReport) }}
	helloPool       = sync.Pool{New: func() interface{} { return new(Hello) }}
	busLinkReqPool  = sync.Pool{New: func() interface{} { return new(BusLinkReq) }}
	busLinkAckPool  = sync.Pool{New: func() interface{} { return new(BusLinkAck) }}
	ringProbePool   = sync.Pool{New: func() interface{} { return new(RingProbe) }}
	ringProbeAckPl  = sync.Pool{New: func() interface{} { return new(RingProbeAck) }}
	mergeIntroPool  = sync.Pool{New: func() interface{} { return new(MergeIntro) }}
	dhtStoreAckPool = sync.Pool{New: func() interface{} { return new(DHTStoreAck) }}
	dhtFetchRepPool = sync.Pool{New: func() interface{} { return new(DHTFetchReply) }}
	dhtReplAckPool  = sync.Pool{New: func() interface{} { return new(DHTReplicateAck) }}
)

// entrySeedCap pre-sizes a pooled message's entry buffer: typical updates
// carry a dozen-odd entries, and seeding the capacity once per pool
// object avoids the 1→2→4→8 append ladder on every fresh buffer.
const entrySeedCap = 24

func seedEntries(es []Entry) []Entry {
	if cap(es) < entrySeedCap {
		return make([]Entry, 0, entrySeedCap)
	}
	return es[:0]
}

// AcquirePing returns a pooled Ping. Entries keeps its previous capacity
// with zero length, so delta composition appends without reallocating.
func AcquirePing() *Ping {
	p := pingPool.Get().(*Ping)
	p.From, p.Seq, p.Entries = NodeRef{}, 0, seedEntries(p.Entries)
	return p
}

// Recycle implements Recyclable.
func (p *Ping) Recycle() { pingPool.Put(p) }

// AcquirePong returns a pooled Pong (see AcquirePing).
func AcquirePong() *Pong {
	p := pongPool.Get().(*Pong)
	p.From, p.Seq, p.Entries = NodeRef{}, 0, seedEntries(p.Entries)
	return p
}

// Recycle implements Recyclable.
func (p *Pong) Recycle() { pongPool.Put(p) }

// AcquireChildReport returns a pooled ChildReport.
func AcquireChildReport() *ChildReport {
	c := childReportPool.Get().(*ChildReport)
	*c = ChildReport{}
	return c
}

// Recycle implements Recyclable.
func (c *ChildReport) Recycle() { childReportPool.Put(c) }

// AcquireHello returns a pooled Hello.
func AcquireHello() *Hello {
	h := helloPool.Get().(*Hello)
	*h = Hello{}
	return h
}

// Recycle implements Recyclable.
func (h *Hello) Recycle() { helloPool.Put(h) }

// AcquireBusLinkReq returns a pooled BusLinkReq.
func AcquireBusLinkReq() *BusLinkReq {
	r := busLinkReqPool.Get().(*BusLinkReq)
	*r = BusLinkReq{}
	return r
}

// Recycle implements Recyclable.
func (r *BusLinkReq) Recycle() { busLinkReqPool.Put(r) }

// AcquireBusLinkAck returns a pooled BusLinkAck.
func AcquireBusLinkAck() *BusLinkAck {
	a := busLinkAckPool.Get().(*BusLinkAck)
	*a = BusLinkAck{}
	return a
}

// Recycle implements Recyclable.
func (a *BusLinkAck) Recycle() { busLinkAckPool.Put(a) }

// AcquireRingProbe returns a pooled RingProbe. Probes are periodic
// repair traffic (one per occupied ring side per probe interval), so they
// pool like the keep-alives: sent to exactly one destination, consumed by
// value in the handler, never retained.
func AcquireRingProbe() *RingProbe {
	p := ringProbePool.Get().(*RingProbe)
	*p = RingProbe{}
	return p
}

// Recycle implements Recyclable.
func (p *RingProbe) Recycle() { ringProbePool.Put(p) }

// AcquireRingProbeAck returns a pooled RingProbeAck.
func AcquireRingProbeAck() *RingProbeAck {
	a := ringProbeAckPl.Get().(*RingProbeAck)
	*a = RingProbeAck{}
	return a
}

// Recycle implements Recyclable.
func (a *RingProbeAck) Recycle() { ringProbeAckPl.Put(a) }

// AcquireMergeIntro returns a pooled MergeIntro.
func AcquireMergeIntro() *MergeIntro {
	m := mergeIntroPool.Get().(*MergeIntro)
	*m = MergeIntro{}
	return m
}

// Recycle implements Recyclable.
func (m *MergeIntro) Recycle() { mergeIntroPool.Put(m) }

// valueSeedCap pre-sizes a pooled DHT message's value buffer; typical
// records are small key-value payloads, and keeping the capacity across
// pool cycles makes the steady-state reply path allocation-free.
//
// Only the DHT *response* types are pooled. The request types (DHTStore,
// DHTFetch, DHTReplicate) deliberately do not implement Recyclable: the
// service plane retries requests by re-sending the same message value, and
// the simulator recycles every Recyclable payload when its datagram ends —
// a pooled request would be recycled out from under its own retry closure.
// Responses are sent exactly once by the plane and never retained, so they
// pool safely.
const valueSeedCap = 256

func seedValue(v []byte) []byte {
	if cap(v) < valueSeedCap {
		return make([]byte, 0, valueSeedCap)
	}
	return v[:0]
}

// AcquireDHTStoreAck returns a pooled DHTStoreAck.
func AcquireDHTStoreAck() *DHTStoreAck {
	m := dhtStoreAckPool.Get().(*DHTStoreAck)
	*m = DHTStoreAck{}
	return m
}

// Recycle implements Recyclable.
func (m *DHTStoreAck) Recycle() { dhtStoreAckPool.Put(m) }

// AcquireDHTFetchReply returns a pooled DHTFetchReply. Value keeps its
// previous capacity with zero length, so reply composition appends without
// reallocating; receivers must copy, never retain, the slice.
func AcquireDHTFetchReply() *DHTFetchReply {
	m := dhtFetchRepPool.Get().(*DHTFetchReply)
	v := seedValue(m.Value)
	*m = DHTFetchReply{Value: v}
	return m
}

// Recycle implements Recyclable.
func (m *DHTFetchReply) Recycle() { dhtFetchRepPool.Put(m) }

// acquireMessage is DecodePooled's allocator: pooled types come from
// their pools (with recycled slice capacity for the decode to append
// into), everything else is a fresh value exactly as newMessage builds.
// The two switches must stay in lockstep — TestDecodePooledCoversTypes
// pins every wire type to a working pooled decode.
func acquireMessage(t MsgType) Message {
	switch t {
	case THello:
		return AcquireHello()
	case TPing:
		return AcquirePing()
	case TPong:
		return AcquirePong()
	case TChildReport:
		return AcquireChildReport()
	case TBusLinkReq:
		return AcquireBusLinkReq()
	case TBusLinkAck:
		return AcquireBusLinkAck()
	case TRingProbe:
		return AcquireRingProbe()
	case TRingProbeAck:
		return AcquireRingProbeAck()
	case TMergeIntro:
		return AcquireMergeIntro()
	case TDHTStoreAck:
		return AcquireDHTStoreAck()
	case TDHTFetchReply:
		return AcquireDHTFetchReply()
	case TDHTReplicateAck:
		return AcquireDHTReplicateAck()
	}
	return newMessage(t)
}

// AcquireDHTReplicateAck returns a pooled DHTReplicateAck.
func AcquireDHTReplicateAck() *DHTReplicateAck {
	m := dhtReplAckPool.Get().(*DHTReplicateAck)
	*m = DHTReplicateAck{}
	return m
}

// Recycle implements Recyclable.
func (m *DHTReplicateAck) Recycle() { dhtReplAckPool.Put(m) }
