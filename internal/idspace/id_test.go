package idspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b ID
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, 1},
		{MaxID, 0, uint64(MaxID)},
		{0, MaxID, uint64(MaxID)},
		{100, 250, 150},
		{MaxID, MaxID, 0},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistProperties(t *testing.T) {
	symmetric := func(a, b uint64) bool {
		return Dist(ID(a), ID(b)) == Dist(ID(b), ID(a))
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a uint64) bool { return Dist(ID(a), ID(a)) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c uint64) bool {
		ab := Dist(ID(a), ID(b))
		bc := Dist(ID(b), ID(c))
		ac := Dist(ID(a), ID(c))
		// uint64 sums can overflow; compare in big-ish space via float is
		// lossy, so use the fact that ab+bc overflowing means it certainly
		// exceeds ac.
		sum := ab + bc
		if sum < ab { // overflow
			return true
		}
		return ac <= sum
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestMid(t *testing.T) {
	cases := []struct {
		a, b, want ID
	}{
		{0, 0, 0},
		{0, 2, 1},
		{2, 0, 1},
		{0, MaxID, MaxID / 2},
		{MaxID - 1, MaxID, MaxID - 1},
		{10, 11, 10},
	}
	for _, c := range cases {
		if got := Mid(c.a, c.b); got != c.want {
			t.Errorf("Mid(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	noOverflow := func(a, b uint64) bool {
		m := Mid(ID(a), ID(b))
		lo, hi := ID(a), ID(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(noOverflow, nil); err != nil {
		t.Errorf("midpoint bounds: %v", err)
	}
}

func TestFromFractionAndBack(t *testing.T) {
	if FromFraction(-0.5) != 0 {
		t.Error("negative fraction should clamp to 0")
	}
	if FromFraction(2) != MaxID {
		t.Error("fraction > 1 should clamp to MaxID")
	}
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		id := FromFraction(f)
		got := id.Fraction()
		if diff := got - f; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("roundtrip fraction %v -> %v", f, got)
		}
	}
}

func TestHashAddrDeterministicAndDispersed(t *testing.T) {
	a := HashAddr("10.0.0.1:4000")
	b := HashAddr("10.0.0.1:4000")
	if a != b {
		t.Fatal("HashAddr not deterministic")
	}
	if HashAddr("10.0.0.1:4000") == HashAddr("10.0.0.1:4001") {
		t.Error("adjacent addresses should not collide")
	}
	if HashKey([]byte("k1")) == HashKey([]byte("k2")) {
		t.Error("distinct keys should not collide")
	}
}

func TestRandomAssignerReproducible(t *testing.T) {
	a1 := RandomAssigner{Rand: rand.New(rand.NewSource(7))}
	a2 := RandomAssigner{Rand: rand.New(rand.NewSource(7))}
	for i := 0; i < 100; i++ {
		if a1.Assign(i, 100, "") != a2.Assign(i, 100, "") {
			t.Fatal("same seed must give same IDs")
		}
	}
}

func TestBalancedAssignerSpread(t *testing.T) {
	n := 64
	a := BalancedAssigner{}
	prev := ID(0)
	for i := 0; i < n; i++ {
		id := a.Assign(i, n, "")
		if i > 0 && id <= prev {
			t.Fatalf("balanced IDs must be strictly increasing: i=%d %v <= %v", i, id, prev)
		}
		prev = id
	}
	// The first node should sit near 1/(2n) of the space.
	first := a.Assign(0, n, "").Fraction()
	want := 1.0 / float64(2*n)
	if diff := first - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("first balanced ID at fraction %v, want ~%v", first, want)
	}
	if (BalancedAssigner{}).Assign(0, 0, "") != 0 {
		t.Error("n=0 should yield 0")
	}
}

func TestBalancedAssignerJitterStaysOrdered(t *testing.T) {
	n := 256
	a := BalancedAssigner{Rand: rand.New(rand.NewSource(3)), JitterFrac: 0.5}
	prev := ID(0)
	for i := 0; i < n; i++ {
		id := a.Assign(i, n, "")
		if i > 0 && id <= prev {
			t.Fatalf("jittered balanced IDs should keep order at jitter 0.5: i=%d", i)
		}
		prev = id
	}
}

func TestSortAndDedup(t *testing.T) {
	ids := []ID{5, 3, 5, 1, 3, 9}
	SortIDs(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i-1] > ids[i] {
			t.Fatal("not sorted")
		}
	}
	d := Dedup(ids)
	want := []ID{1, 3, 5, 9}
	if len(d) != len(want) {
		t.Fatalf("dedup length %d, want %d", len(d), len(want))
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dedup[%d] = %v, want %v", i, d[i], want[i])
		}
	}
	if got := Dedup(nil); len(got) != 0 {
		t.Error("dedup nil should be empty")
	}
	one := Dedup([]ID{42})
	if len(one) != 1 || one[0] != 42 {
		t.Error("dedup single element")
	}
}

func TestNearestIndex(t *testing.T) {
	ids := []ID{10, 20, 30, 40}
	cases := []struct {
		x    ID
		want int
	}{
		{0, 0}, {10, 0}, {14, 0},
		{15, 0}, // tie 10 vs 20 resolves low
		{16, 1}, {20, 1},
		{29, 2}, {35, 2}, // tie 30 vs 40 resolves low
		{36, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := NearestIndex(ids, c.x); got != c.want {
			t.Errorf("NearestIndex(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestNearestIndexPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty slice")
		}
	}()
	NearestIndex(nil, 0)
}

func TestNearestIndexIsNearest(t *testing.T) {
	prop := func(raw []uint64, x uint64) bool {
		if len(raw) == 0 {
			return true
		}
		ids := make([]ID, len(raw))
		for i, r := range raw {
			ids[i] = ID(r)
		}
		ids = Dedup(SortIDs(ids))
		got := NearestIndex(ids, ID(x))
		best := Dist(ids[got], ID(x))
		for _, id := range ids {
			if Dist(id, ID(x)) < best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBetween(t *testing.T) {
	if !Between(5, 1, 10) || !Between(1, 1, 10) || !Between(10, 1, 10) {
		t.Error("inclusive bounds")
	}
	if Between(0, 1, 10) || Between(11, 1, 10) {
		t.Error("outside bounds")
	}
}

func TestIDString(t *testing.T) {
	if got := ID(0xff).String(); got != "00000000000000ff" {
		t.Errorf("String = %q", got)
	}
}
