package idspace

import "fmt"

// Region is a contiguous, inclusive interval [Lo, Hi] of the ID space: one
// cell of a tessellation. A level-k node's region is the slice of level k-1
// it is responsible for (its children live inside it).
type Region struct {
	Lo, Hi ID
}

// FullRegion covers the whole space.
func FullRegion() Region { return Region{Lo: 0, Hi: MaxID} }

// String implements fmt.Stringer.
func (r Region) String() string { return fmt.Sprintf("[%s, %s]", r.Lo, r.Hi) }

// Valid reports whether the region is well-formed (Lo ≤ Hi).
func (r Region) Valid() bool { return r.Lo <= r.Hi }

// Contains reports whether x lies inside the region.
func (r Region) Contains(x ID) bool { return r.Lo <= x && x <= r.Hi }

// Extent returns the region's length as float64. The +1 for inclusivity is
// deliberately dropped: extents feed ratio computations where one unit in
// 2^64 is noise, and float64 cannot represent 2^64 exactly anyway.
func (r Region) Extent() float64 {
	return float64(uint64(r.Hi - r.Lo))
}

// Center returns the midpoint of the region.
func (r Region) Center() ID { return Mid(r.Lo, r.Hi) }

// ClampedDist returns the Euclidean distance from x to the region: zero when
// x is inside, otherwise the distance to the nearest edge. The RegionModel
// distance function (routing package) is built on it.
func (r Region) ClampedDist(x ID) uint64 {
	switch {
	case x < r.Lo:
		return uint64(r.Lo - x)
	case x > r.Hi:
		return uint64(x - r.Hi)
	default:
		return 0
	}
}

// Overlaps reports whether r and o share at least one coordinate.
func (r Region) Overlaps(o Region) bool { return r.Lo <= o.Hi && o.Lo <= r.Hi }

// ContainsRegion reports whether o lies fully inside r.
func (r Region) ContainsRegion(o Region) bool { return r.Lo <= o.Lo && o.Hi <= r.Hi }

// Split cuts the region into two halves at its midpoint; the first half
// receives the extra coordinate for odd extents. Splitting a single-point
// region returns the region itself and a false second result.
func (r Region) Split() (Region, Region, bool) {
	if r.Lo >= r.Hi {
		return r, Region{}, false
	}
	m := Mid(r.Lo, r.Hi)
	return Region{r.Lo, m}, Region{m + 1, r.Hi}, true
}

// SplitAt cuts the region into [Lo, at] and [at+1, Hi]. It reports false if
// at is outside the region or at == Hi (which would leave an empty right
// half).
func (r Region) SplitAt(at ID) (Region, Region, bool) {
	if !r.Contains(at) || at == r.Hi {
		return r, Region{}, false
	}
	return Region{r.Lo, at}, Region{at + 1, r.Hi}, true
}

// Tessellate partitions the region into the cells owned by the given sorted,
// deduplicated owner IDs: cell boundaries fall on midpoints between adjacent
// owners, so every coordinate belongs to the owner nearest to it (lower
// owner wins midpoint ties). This is exactly the 1-D tessellation of §III:
// each node is "responsible for its tessellation". All owners must lie
// inside the region; the cells cover the region exactly.
//
// An empty owner list yields nil.
func (r Region) Tessellate(owners []ID) []Region {
	if len(owners) == 0 {
		return nil
	}
	cells := make([]Region, len(owners))
	lo := r.Lo
	for i := range owners {
		hi := r.Hi
		if i+1 < len(owners) {
			// Boundary at the midpoint between this owner and the next;
			// the midpoint itself belongs to the lower owner.
			hi = Mid(owners[i], owners[i+1])
		}
		cells[i] = Region{Lo: lo, Hi: hi}
		if i+1 < len(owners) {
			lo = hi + 1
		}
	}
	return cells
}

// CellOf returns the tessellation cell owned by owners[i] within r, without
// materialising every cell. owners must be sorted and lie inside r.
func (r Region) CellOf(owners []ID, i int) Region {
	lo := r.Lo
	if i > 0 {
		lo = Mid(owners[i-1], owners[i]) + 1
	}
	hi := r.Hi
	if i+1 < len(owners) {
		hi = Mid(owners[i], owners[i+1])
	}
	return Region{Lo: lo, Hi: hi}
}

// OwnerIndex returns the index of the owner responsible for x under the
// midpoint tessellation of r, i.e. the owner nearest to x. owners must be
// sorted, non-empty and inside r.
func (r Region) OwnerIndex(owners []ID, x ID) int {
	return NearestIndex(owners, x)
}
