package idspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionBasics(t *testing.T) {
	r := Region{Lo: 100, Hi: 200}
	if !r.Valid() {
		t.Fatal("valid region reported invalid")
	}
	if (Region{Lo: 2, Hi: 1}).Valid() {
		t.Fatal("inverted region reported valid")
	}
	if !r.Contains(100) || !r.Contains(200) || !r.Contains(150) {
		t.Error("Contains inclusive bounds")
	}
	if r.Contains(99) || r.Contains(201) {
		t.Error("Contains outside")
	}
	if r.Center() != 150 {
		t.Errorf("Center = %v", r.Center())
	}
	if r.Extent() != 100 {
		t.Errorf("Extent = %v", r.Extent())
	}
	full := FullRegion()
	if !full.Contains(0) || !full.Contains(MaxID) {
		t.Error("FullRegion should span the space")
	}
}

func TestClampedDist(t *testing.T) {
	r := Region{Lo: 100, Hi: 200}
	cases := []struct {
		x    ID
		want uint64
	}{
		{100, 0}, {150, 0}, {200, 0},
		{90, 10}, {0, 100}, {210, 10}, {300, 100},
	}
	for _, c := range cases {
		if got := r.ClampedDist(c.x); got != c.want {
			t.Errorf("ClampedDist(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	r := Region{Lo: 0, Hi: 9}
	a, b, ok := r.Split()
	if !ok {
		t.Fatal("split should succeed")
	}
	if a.Lo != 0 || a.Hi != 4 || b.Lo != 5 || b.Hi != 9 {
		t.Errorf("split halves %v %v", a, b)
	}
	if _, _, ok := (Region{Lo: 5, Hi: 5}).Split(); ok {
		t.Error("single point region must not split")
	}
}

func TestSplitAt(t *testing.T) {
	r := Region{Lo: 10, Hi: 20}
	a, b, ok := r.SplitAt(13)
	if !ok || a.Hi != 13 || b.Lo != 14 || b.Hi != 20 {
		t.Errorf("SplitAt: %v %v ok=%v", a, b, ok)
	}
	if _, _, ok := r.SplitAt(20); ok {
		t.Error("SplitAt(Hi) would create empty right half")
	}
	if _, _, ok := r.SplitAt(9); ok {
		t.Error("SplitAt outside region")
	}
}

func TestSplitProperty(t *testing.T) {
	prop := func(loRaw, hiRaw uint64) bool {
		lo, hi := ID(loRaw), ID(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		r := Region{Lo: lo, Hi: hi}
		a, b, ok := r.Split()
		if !ok {
			return lo == hi
		}
		// Halves must be valid, adjacent and exactly cover r.
		return a.Valid() && b.Valid() && a.Lo == r.Lo && b.Hi == r.Hi && a.Hi+1 == b.Lo
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTessellate(t *testing.T) {
	r := Region{Lo: 0, Hi: 100}
	owners := []ID{10, 30, 80}
	cells := r.Tessellate(owners)
	if len(cells) != 3 {
		t.Fatalf("want 3 cells, got %d", len(cells))
	}
	// Boundaries at midpoints 20 and 55.
	want := []Region{{0, 20}, {21, 55}, {56, 100}}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cell %d = %v, want %v", i, cells[i], want[i])
		}
	}
	if got := r.Tessellate(nil); got != nil {
		t.Error("empty owners should yield nil")
	}
	single := r.Tessellate([]ID{50})
	if len(single) != 1 || single[0] != r {
		t.Error("single owner should own the whole region")
	}
}

func TestCellOfMatchesTessellate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		owners := make([]ID, n)
		for i := range owners {
			owners[i] = ID(rng.Uint64())
		}
		owners = Dedup(SortIDs(owners))
		r := FullRegion()
		cells := r.Tessellate(owners)
		for i := range owners {
			if got := r.CellOf(owners, i); got != cells[i] {
				t.Fatalf("CellOf(%d) = %v, Tessellate gave %v", i, got, cells[i])
			}
		}
	}
}

func TestTessellationCoversAndIsDisjoint(t *testing.T) {
	prop := func(raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		owners := make([]ID, len(raw))
		for i, v := range raw {
			owners[i] = ID(v)
		}
		owners = Dedup(SortIDs(owners))
		r := FullRegion()
		cells := r.Tessellate(owners)
		// Exact cover: first cell starts at r.Lo, last ends at r.Hi, and
		// consecutive cells are adjacent.
		if cells[0].Lo != r.Lo || cells[len(cells)-1].Hi != r.Hi {
			return false
		}
		for i := 1; i < len(cells); i++ {
			if cells[i-1].Hi+1 != cells[i].Lo {
				return false
			}
		}
		// Each owner must be inside its own cell.
		for i, o := range owners {
			if !cells[i].Contains(o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOwnerIndexAgreesWithCells(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	owners := make([]ID, 16)
	for i := range owners {
		owners[i] = ID(rng.Uint64())
	}
	owners = Dedup(SortIDs(owners))
	r := FullRegion()
	cells := r.Tessellate(owners)
	for trial := 0; trial < 1000; trial++ {
		x := ID(rng.Uint64())
		idx := r.OwnerIndex(owners, x)
		if !cells[idx].Contains(x) {
			t.Fatalf("owner %d cell %v does not contain %v", idx, cells[idx], x)
		}
	}
}

func TestOverlapsAndContainsRegion(t *testing.T) {
	a := Region{10, 20}
	if !a.Overlaps(Region{20, 30}) || !a.Overlaps(Region{0, 10}) || !a.Overlaps(Region{12, 15}) {
		t.Error("expected overlap")
	}
	if a.Overlaps(Region{21, 30}) || a.Overlaps(Region{0, 9}) {
		t.Error("unexpected overlap")
	}
	if !a.ContainsRegion(Region{12, 15}) || !a.ContainsRegion(a) {
		t.Error("expected containment")
	}
	if a.ContainsRegion(Region{5, 15}) {
		t.Error("unexpected containment")
	}
}
