// Package idspace models the one-dimensional identifier space on which the
// TreeP overlay is built.
//
// TreeP (Hudzia et al., 2005) maps every peer onto a 1-D coordinate space
// via its node ID; the hierarchy is a tessellation of that space at each
// level. This package provides the ID type, the Euclidean metric the paper's
// distance function is built from, interval ("region") arithmetic for
// tessellations, and the ID-assignment strategies discussed in §III
// (random, hash of address, and range-balanced placement).
package idspace

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
)

// ID is a coordinate in the 1-D identifier space. The space is the full
// uint64 range [0, MaxID]. IDs are *not* treated as a ring: the paper uses
// plain Euclidean distance on the line (its hierarchy is a B+tree over an
// interval, not a Chord-style circle).
type ID uint64

// MaxID is the largest coordinate in the space.
const MaxID ID = ^ID(0)

// SpaceExtent is the total extent L of the ID space as a float64. It is the
// "L" term of the paper's distance function D (see package routing).
const SpaceExtent = float64(MaxID)

// String renders the ID in fixed-width hexadecimal, which keeps log output
// sortable in ID order.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Dist returns the Euclidean distance d(a, b) = |a - b| on the line.
func Dist(a, b ID) uint64 {
	if a > b {
		return uint64(a - b)
	}
	return uint64(b - a)
}

// DistF returns Dist as a float64, the form used inside the routing distance
// function where it is compared against fractions of SpaceExtent.
func DistF(a, b ID) float64 { return float64(Dist(a, b)) }

// Less reports whether a sorts before b in the space. It exists so call
// sites read as intent rather than as integer comparison.
func Less(a, b ID) bool { return a < b }

// Between reports whether x lies in the closed interval [lo, hi].
// lo must be ≤ hi; Between does not wrap.
func Between(x, lo, hi ID) bool { return lo <= x && x <= hi }

// Mid returns the midpoint of a and b without overflow.
func Mid(a, b ID) ID {
	if a > b {
		a, b = b, a
	}
	return a + (b-a)/2
}

// FromFraction maps f in [0,1] to an ID. Values outside [0,1] are clamped.
// It is used by range-balanced assignment and by tests that need evenly
// spread coordinates.
func FromFraction(f float64) ID {
	if f <= 0 {
		return 0
	}
	if f >= 1 {
		return MaxID
	}
	return ID(f * SpaceExtent)
}

// Fraction returns the ID's position in the space as a value in [0,1].
func (id ID) Fraction() float64 { return float64(id) / SpaceExtent }

// HashAddr derives an ID from an opaque address string (e.g. "ip:port"),
// the paper's "hash of the IP/Port numbers" assignment. FNV-1a provides
// the byte absorption; a splitmix64 finaliser spreads the result across
// the whole space — raw FNV of short suffix-varying strings ("node-1",
// "node-2", …) differs only in low bits, which would pile every key onto
// one owner.
func HashAddr(addr string) ID {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	return ID(finalize(h.Sum64()))
}

// HashKey derives an ID for an arbitrary byte key. The DHT and discovery
// layers use it to place objects in the same space as nodes.
func HashKey(key []byte) ID {
	h := fnv.New64a()
	_, _ = h.Write(key)
	return ID(finalize(h.Sum64()))
}

// finalize is the splitmix64 finaliser: a bijective mixer that spreads
// low-bit differences across all 64 bits.
func finalize(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Assigner produces node IDs under one of the strategies of §III: the ID
// "can be assigned randomly or based on a hash of the IP/Port numbers",
// or chosen from a range to keep the tree balanced.
type Assigner interface {
	// Assign returns the ID for the i-th of n nodes. addr is the node's
	// transport address (used only by hash assignment).
	Assign(i, n int, addr string) ID
}

// RandomAssigner draws IDs uniformly at random from the whole space using
// its own rand source, so that runs are reproducible from a seed.
type RandomAssigner struct{ Rand *rand.Rand }

// Assign implements Assigner.
func (r RandomAssigner) Assign(i, n int, addr string) ID {
	return ID(r.Rand.Uint64())
}

// HashAssigner derives each ID from the node's address.
type HashAssigner struct{}

// Assign implements Assigner.
func (HashAssigner) Assign(i, n int, addr string) ID { return HashAddr(addr) }

// BalancedAssigner spreads n nodes evenly over the space with optional
// jitter, realising the paper's "preliminary search for an ID range to
// choose from ... allow the system to maintain a balanced tree".
// JitterFrac ∈ [0,1) perturbs each coordinate by at most that fraction of
// one inter-node gap.
type BalancedAssigner struct {
	Rand       *rand.Rand
	JitterFrac float64
}

// Assign implements Assigner.
func (b BalancedAssigner) Assign(i, n int, addr string) ID {
	if n <= 0 {
		return 0
	}
	gap := SpaceExtent / float64(n)
	base := gap * (float64(i) + 0.5)
	if b.JitterFrac > 0 && b.Rand != nil {
		base += (b.Rand.Float64() - 0.5) * gap * b.JitterFrac
	}
	if base < 0 {
		base = 0
	}
	return FromFraction(base / SpaceExtent)
}

// SortIDs sorts ids ascending in place and returns the slice.
func SortIDs(ids []ID) []ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dedup removes duplicate IDs from a sorted slice in place.
func Dedup(sorted []ID) []ID {
	if len(sorted) < 2 {
		return sorted
	}
	out := sorted[:1]
	for _, id := range sorted[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// NearestIndex returns the index into the sorted slice ids of the ID whose
// Euclidean distance to x is smallest. Ties resolve to the lower ID so the
// choice is deterministic. It panics on an empty slice — callers decide what
// an empty neighbourhood means.
func NearestIndex(ids []ID, x ID) int {
	if len(ids) == 0 {
		panic("idspace: NearestIndex on empty slice")
	}
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= x })
	switch {
	case i == 0:
		return 0
	case i == len(ids):
		return len(ids) - 1
	}
	if Dist(ids[i-1], x) <= Dist(ids[i], x) {
		return i - 1
	}
	return i
}
