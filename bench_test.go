// Benchmarks: one target per paper artefact (see DESIGN.md §5). Each runs
// a scaled-down version of the corresponding experiment; the full-size
// sweeps live in cmd/treep-bench, whose output is recorded in
// EXPERIMENTS.md. Reported custom metrics carry the figure's headline
// quantity (failure % or hops), so `go test -bench` output doubles as a
// compact reproduction table.
package treep

import (
	"testing"
	"time"

	"treep/internal/chord"
	"treep/internal/core"
	"treep/internal/experiment"
	"treep/internal/flood"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/routing"
	"treep/internal/scenario"
	"treep/internal/simrt"
)

// benchSweep is the shared scaled-down sweep configuration.
func benchSweep() experiment.Options {
	return experiment.Options{
		N:              300,
		Seeds:          []int64{1},
		KillStep:       0.10,
		MaxKill:        0.50,
		WarmUp:         6 * time.Second,
		Settle:         3 * time.Second,
		LookupsPerStep: 60,
	}
}

func reportFailAt(b *testing.B, res *experiment.SweepResult, algo proto.Algo, killPct float64, label string) {
	b.Helper()
	s := res.FailRateSeries(algo)
	for i, x := range s.X {
		if x == killPct {
			b.ReportMetric(s.Y[i], label)
			return
		}
	}
}

func BenchmarkFigA_FailedLookups_FixedNC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.Policy = nodeprof.FixedPolicy{NC: 4}
		res := experiment.RunKillSweep(o)
		reportFailAt(b, res, proto.AlgoG, 30, "failpct@30kill")
		reportFailAt(b, res, proto.AlgoG, 50, "failpct@50kill")
	}
}

func BenchmarkFigB_AvgHops_FixedNC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		res := experiment.RunKillSweep(o)
		h := res.AvgHopsSeries(proto.AlgoG)
		if len(h.Y) > 0 {
			b.ReportMetric(h.Y[0], "hops@10kill")
			b.ReportMetric(h.Y[len(h.Y)-1], "hops@50kill")
		}
	}
}

func BenchmarkFigC_FailedLookups_VarNC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.Policy = nodeprof.CapacityPolicy{Min: 2, Max: 16}
		res := experiment.RunKillSweep(o)
		reportFailAt(b, res, proto.AlgoG, 30, "failpct@30kill")
	}
}

func BenchmarkFigD_AvgHops_FixedVsVar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fixed := benchSweep()
		res1 := experiment.RunKillSweep(fixed)
		variable := benchSweep()
		variable.Policy = nodeprof.CapacityPolicy{Min: 2, Max: 16}
		res2 := experiment.RunKillSweep(variable)
		h1, h2 := res1.AvgHopsSeries(proto.AlgoG), res2.AvgHopsSeries(proto.AlgoG)
		if len(h1.Y) > 0 && len(h2.Y) > 0 {
			b.ReportMetric(h1.Y[len(h1.Y)-1], "hops-fixed@50kill")
			b.ReportMetric(h2.Y[len(h2.Y)-1], "hops-var@50kill")
		}
	}
}

func BenchmarkFigE_MinMaxEnvelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.Seeds = []int64{1, 2, 3}
		res := experiment.RunKillSweep(o)
		lo, hi := res.FailEnvelope(proto.AlgoG)
		if n := len(hi.Y); n > 0 {
			b.ReportMetric(hi.Y[n-1]-lo.Y[n-1], "spread@50kill")
		}
		parts := res.PartitionSeries()
		if n := len(parts.Y); n > 0 {
			b.ReportMetric(parts.Y[n-1], "partitions@50kill")
		}
	}
}

func benchSurface(b *testing.B, policy nodeprof.ChildPolicy, algo proto.Algo) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.Policy = policy
		o.Algos = []proto.Algo{algo}
		res := experiment.RunKillSweep(o)
		surf := res.HopSurface(algo)
		if h := surf.At(10); h.Total() > 0 {
			b.ReportMetric(100*h.Fraction(h.Percentile(0.5)), "pct-at-modal-hops")
			b.ReportMetric(float64(h.Percentile(0.5)), "modal-hops")
		}
	}
}

func BenchmarkFigF_HopSurface_G_FixedNC(b *testing.B) {
	benchSurface(b, nodeprof.FixedPolicy{NC: 4}, proto.AlgoG)
}

func BenchmarkFigG_HopSurface_NG_FixedNC(b *testing.B) {
	benchSurface(b, nodeprof.FixedPolicy{NC: 4}, proto.AlgoNG)
}

func BenchmarkFigH_HopSurface_G_VarNC(b *testing.B) {
	benchSurface(b, nodeprof.CapacityPolicy{Min: 2, Max: 16}, proto.AlgoG)
}

func BenchmarkFigI_HopSurface_NG_VarNC(b *testing.B) {
	benchSurface(b, nodeprof.CapacityPolicy{Min: 2, Max: 16}, proto.AlgoNG)
}

// benchScenario runs one scenario timeline through the experiment harness
// and reports lookup failure percentage and invariant-violation count at
// the final phase boundary.
func benchScenario(b *testing.B, phases []scenario.Phase) {
	b.Helper()
	benchScenarioN(b, 300, phases)
}

// benchScenarioN is benchScenario at an explicit population; the scale
// points (2k, 5k) track the substrate's events/sec and allocs/op as the
// simulated population grows (EXPERIMENTS.md scale table).
func benchScenarioN(b *testing.B, n int, phases []scenario.Phase) {
	b.Helper()
	benchScenarioSharded(b, n, 0, phases)
}

// benchScenarioSharded is benchScenarioN on an explicit engine
// configuration (shards 0 = classic kernel, ≥1 = sharded kernel).
func benchScenarioSharded(b *testing.B, n, shards int, phases []scenario.Phase) {
	b.Helper()
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		res := experiment.RunScenario(experiment.ScenarioOptions{
			N:               n,
			Seeds:           []int64{1},
			Phases:          phases,
			LookupsPerPhase: 60,
			Shards:          shards,
		})
		last := len(res.Trials[0].Steps) - 1
		fail := res.FailRateByPhase(proto.AlgoG)
		b.ReportMetric(fail.Y[last], "failpct@end")
		viol := res.ViolationsByPhase()
		b.ReportMetric(viol.Y[last], "violations@end")
		if r := res.Trials[0].Result; r != nil {
			events += r.Events
		}
	}
	if events > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	}
}

func BenchmarkScenarioChurn(b *testing.B) {
	benchScenario(b, churnPhases())
}

// churnPhases is the canonical churn timeline used at every scale point.
func churnPhases() []scenario.Phase {
	return []scenario.Phase{
		scenario.Churn{For: 15 * time.Second, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 12 * time.Second},
	}
}

func BenchmarkScenarioChurn2k(b *testing.B) {
	benchScenarioN(b, 2000, churnPhases())
}

// BenchmarkScenarioChurnSharded2k runs the canonical churn timeline on
// the sharded kernel (4 shards) — the CI smoke point for the parallel
// engine. Events/s against BenchmarkScenarioChurn2k is the speedup on
// the runner; allocs/op guards the exchange path staying allocation-free
// at steady state.
func BenchmarkScenarioChurnSharded2k(b *testing.B) {
	benchScenarioSharded(b, 2000, 4, churnPhases())
}

func BenchmarkScenarioChurn5k(b *testing.B) {
	if testing.Short() {
		b.Skip("N=5000 scenario: skipped in -short mode")
	}
	benchScenarioN(b, 5000, churnPhases())
}

func BenchmarkScenarioChurn10k(b *testing.B) {
	if testing.Short() {
		b.Skip("N=10000 scenario: skipped in -short mode")
	}
	benchScenarioN(b, 10000, churnPhases())
}

// benchDHTChurn is the canonical storage workload: seed records, then a
// put/get mix with concurrent churn, then settle — the regime put-time-only
// replication silently lost data under. The reported metrics are the
// ledger size, the read-miss percentage, and the end-state violation count
// (durability checkers included); allocs/op guards the storage hot path.
func benchDHTChurn(b *testing.B, n int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := simrt.New(simrt.Options{N: n, Seed: 1, Bulk: true})
		st := scenario.NewStorage(3)
		st.AttachAll(c)
		c.StartAll()
		opts := scenario.Options{
			Checkers:    append(scenario.AllCheckers(), scenario.StorageCheckers(0.99)...),
			Storage:     st,
			FinalGrace:  3 * time.Second,
			FinalChecks: 4,
		}
		res := scenario.Run(c, opts, dhtChurnPhases()...)
		b.ReportMetric(float64(st.Records()), "records")
		miss := 0.0
		if st.Gets > 0 {
			miss = 100 * float64(st.GetMiss) / float64(st.Gets)
		}
		b.ReportMetric(miss, "getmiss%")
		b.ReportMetric(float64(len(res.Final)), "violations@end")
	}
}

// dhtChurnPhases is the canonical put/get-under-churn timeline, mirrored
// by treep-bench's -storage scale rows so CI's allocation guard and the
// EXPERIMENTS table track the same workload.
func dhtChurnPhases() []scenario.Phase {
	return []scenario.Phase{
		scenario.Settle{For: 8 * time.Second},
		scenario.StoreRecords{Count: 300},
		scenario.StorageWorkload{For: 15 * time.Second, PutRate: 5, GetRate: 10, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 10 * time.Second},
	}
}

func BenchmarkDHTChurn(b *testing.B) {
	benchDHTChurn(b, 300)
}

func BenchmarkDHTChurn2k(b *testing.B) {
	benchDHTChurn(b, 2000)
}

// benchZipfBalanced is the skewed-read smoke point: a Zipf(1.0) read
// storm against the full balancer stack (load observability + hot-key
// fan-out), the regime the capacity balancer exists for. The timeline is
// mirrored by treep-bench's -zipf scale rows, so CI's allocation guard
// and this benchmark track the same workload. Reported metrics are the
// read-miss percentage, the fraction of reads absorbed by reader-side
// caches, and the end-state violation count with both balance checkers
// gating.
func benchZipfBalanced(b *testing.B, n int) {
	b.Helper()
	b.ReportAllocs()
	rate := float64(n) / 2
	if rate < 100 {
		rate = 100
	}
	for i := 0; i < b.N; i++ {
		c := simrt.New(simrt.Options{N: n, Seed: 1, Bulk: true, Config: core.Config{Balancer: true}})
		st := scenario.NewStorage(3)
		st.HotCache = true
		st.AttachAll(c)
		c.StartAll()
		opts := scenario.Options{
			Checkers:    append(scenario.AllCheckers(), scenario.BalanceCheckers()...),
			Storage:     st,
			FinalGrace:  3 * time.Second,
			FinalChecks: 4,
		}
		res := scenario.Run(c, opts,
			scenario.Settle{For: 8 * time.Second},
			scenario.StoreRecords{Count: 64},
			scenario.Settle{For: 2 * time.Second},
			scenario.ZipfReads{For: 20 * time.Second, Rate: rate, Theta: 1.0, Readers: 64},
		)
		miss := 0.0
		if st.Gets > 0 {
			miss = 100 * float64(st.GetMiss) / float64(st.Gets)
		}
		b.ReportMetric(miss, "getmiss%")
		var serves uint64
		for _, nd := range c.Nodes {
			if s := st.Service(nd.Addr()); s != nil {
				serves += s.Stats.CacheServes
			}
		}
		absorbed := 0.0
		if st.Gets > 0 {
			absorbed = 100 * float64(serves) / float64(st.Gets)
		}
		b.ReportMetric(absorbed, "cached%")
		b.ReportMetric(float64(len(res.Final)), "violations@end")
	}
}

func BenchmarkZipfBalanced(b *testing.B) {
	benchZipfBalanced(b, 300)
}

func BenchmarkZipfBalanced2k(b *testing.B) {
	benchZipfBalanced(b, 2000)
}

func BenchmarkScenarioFlashCrowd(b *testing.B) {
	benchScenario(b, []scenario.Phase{
		scenario.FlashCrowd{Joins: 60, Over: 4 * time.Second},
		scenario.Settle{For: 12 * time.Second},
	})
}

func BenchmarkScenarioZoneFailure(b *testing.B) {
	benchScenario(b, []scenario.Phase{
		scenario.ZoneFailure{Zone: scenario.ZoneFraction(0.40, 0.55), Settle: 20 * time.Second},
	})
}

func BenchmarkScenarioPartitionHeal(b *testing.B) {
	benchScenario(b, []scenario.Phase{
		scenario.PartitionHeal{Hold: 8 * time.Second, Heal: 20 * time.Second},
	})
}

func BenchmarkAN1_HeightLaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiment.HeightLaw([]int{256, 1024}, nil, 1)
		last := points[len(points)-1]
		b.ReportMetric(float64(last.Height), "height@1024")
		b.ReportMetric(last.Predicted, "predicted@1024")
	}
}

func BenchmarkAN2_RoutingTableSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.TableSizes(300, 1)
		if len(rows) > 0 {
			b.ReportMetric(rows[0].AvgSize, "level0-table-size")
			b.ReportMetric(rows[len(rows)-1].AvgSize, "top-table-size")
		}
	}
}

func BenchmarkAN3_LogNHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := experiment.LogNHops([]int{200, 800}, 1, 60)
		b.ReportMetric(points[0].AvgHops, "hops@200")
		b.ReportMetric(points[1].AvgHops, "hops@800")
	}
}

func BenchmarkEXT1_Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Chord under the same 20% kill.
		cc := chord.New(300, 1)
		cc.Run(4 * time.Second)
		rng := cc.Kernel.Stream(5)
		killed := 0
		for killed < 60 {
			nd := cc.Nodes[rng.Intn(len(cc.Nodes))]
			if cc.Alive(nd) {
				cc.Kill(nd)
				killed++
			}
		}
		cc.DropDead()
		cc.Run(6 * time.Second)
		alive := cc.AliveNodes()
		found := 0
		for j := 0; j < 60; j++ {
			origin := alive[rng.Intn(len(alive))]
			target := alive[rng.Intn(len(alive))]
			want := target.ID()
			origin.Lookup(cc, want, func(r chord.LookupResult) {
				if r.Found && r.Succ == want {
					found++
				}
			})
		}
		cc.Run(12 * time.Second)
		b.ReportMetric(100*float64(60-found)/60, "chord-failpct@20kill")

		// Flooding message cost for one lookup.
		fc := flood.New(300, 4, 1)
		before := fc.MessagesSent()
		fc.Nodes[0].Lookup(fc, fc.Nodes[200].ID(), 8, func(flood.Result) {})
		fc.Run(12 * time.Second)
		b.ReportMetric(float64(fc.MessagesSent()-before), "flood-msgs-per-lookup")
	}
}

func BenchmarkABL1_DistanceModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.MaxKill = 0.30
		res1 := experiment.RunKillSweep(o)
		o2 := benchSweep()
		o2.MaxKill = 0.30
		o2.Model = routing.BranchingModel{Height: 6, Branching: 4}
		res2 := experiment.RunKillSweep(o2)
		reportFailAt(b, res1, proto.AlgoG, 30, "paper-failpct@30")
		reportFailAt(b, res2, proto.AlgoG, 30, "branching-failpct@30")
	}
}

func BenchmarkABL2_UpdatePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.MaxKill = 0.30
		res1 := experiment.RunKillSweep(o)
		o2 := benchSweep()
		o2.MaxKill = 0.30
		o2.PiggybackOnly = true
		res2 := experiment.RunKillSweep(o2)
		reportFailAt(b, res1, proto.AlgoG, 30, "immediate-failpct@30")
		reportFailAt(b, res2, proto.AlgoG, 30, "piggyback-failpct@30")
	}
}

func BenchmarkABL3_RetainUpper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchSweep()
		o.MaxKill = 0.30
		res1 := experiment.RunKillSweep(o)
		o2 := benchSweep()
		o2.MaxKill = 0.30
		o2.RetainUpperLevels = true
		res2 := experiment.RunKillSweep(o2)
		reportFailAt(b, res1, proto.AlgoG, 30, "demote-failpct@30")
		reportFailAt(b, res2, proto.AlgoG, 30, "retain-failpct@30")
	}
}
