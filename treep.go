// Package treep is a Go implementation of TreeP, the tree-based
// peer-to-peer overlay of Hudzia, Kechadi and Ottewill (CLUSTER 2005).
//
// TreeP arranges peers in a B+tree-like hierarchy over a 1-D ID space:
// every peer sits on the level-0 ring, capable peers are elected upward to
// tessellate the space at each level, and lookups route through the
// hierarchy in O(log n) hops with strong resilience to failures. The
// overlay was designed as the discovery and load-balancing substrate for
// grid middleware; this package exposes that functionality plus the DHT
// extension the paper describes.
//
// Two runtimes are provided:
//
//   - a deterministic simulated network (NewSimNetwork) used by the
//     examples, tests and the paper-reproduction benchmarks, and
//   - a real UDP transport (StartUDPNode) running the identical protocol
//     state machines on sockets.
//
// See DESIGN.md for the paper-to-code map and EXPERIMENTS.md for the
// reproduction results.
package treep

import (
	"errors"
	"time"

	"treep/internal/core"
	"treep/internal/dget"
	"treep/internal/dht"
	"treep/internal/idspace"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/scenario"
	"treep/internal/simrt"
	"treep/internal/udptransport"
)

// ID is a coordinate in TreeP's 1-D identifier space.
type ID = idspace.ID

// HashKey maps an arbitrary key into the ID space (used for DHT keys and
// discovery attributes).
func HashKey(key []byte) ID { return idspace.HashKey(key) }

// Algo selects a lookup algorithm from §III.f of the paper.
type Algo = proto.Algo

// Lookup algorithms.
const (
	// AlgoG is the greedy algorithm with the halving-distance rule.
	AlgoG = proto.AlgoG
	// AlgoNG is the non-greedy variant (first improving neighbour).
	AlgoNG = proto.AlgoNG
	// AlgoNGSA is non-greedy with fall-back alternates in the request.
	AlgoNGSA = proto.AlgoNGSA
)

// LookupResult reports a resolved lookup.
type LookupResult = core.LookupResult

// Lookup outcome statuses.
const (
	LookupFound    = core.LookupFound
	LookupNotFound = core.LookupNotFound
	LookupTimeout  = core.LookupTimeout
)

// Resource is a discoverable grid entity (see Directory).
type Resource = dget.Resource

// ChildPolicy decides each node's maximum child count nc.
type ChildPolicy = nodeprof.ChildPolicy

// FixedChildren returns the paper's first evaluation case: nc fixed.
func FixedChildren(nc int) ChildPolicy { return nodeprof.FixedPolicy{NC: nc} }

// CapacityChildren returns the paper's second case: nc scaled between min
// and max by node capability.
func CapacityChildren(min, max int) ChildPolicy { return nodeprof.CapacityPolicy{Min: min, Max: max} }

// SimOptions configures a simulated TreeP network.
type SimOptions struct {
	// N is the number of peers (required).
	N int
	// Seed makes the whole run reproducible (default 1).
	Seed int64
	// Children is the max-children policy (default FixedChildren(4)).
	Children ChildPolicy
	// Height caps the hierarchy height h (default 6, the paper's setting).
	Height uint8
}

// SimNetwork is a deterministic in-process TreeP deployment. All methods
// are synchronous: they advance the simulation's virtual clock as needed.
// SimNetwork is not safe for concurrent use.
type SimNetwork struct {
	cluster  *simrt.Cluster
	services []*dht.Service
}

// NewSimNetwork builds a steady-state network of o.N peers, attaches a DHT
// service to each, starts the maintenance protocol and lets it settle.
func NewSimNetwork(o SimOptions) (*SimNetwork, error) {
	if o.N < 2 {
		return nil, errors.New("treep: need at least 2 nodes")
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	cfg := core.Defaults()
	if o.Children != nil {
		cfg.ChildPolicy = o.Children
	}
	if o.Height != 0 {
		cfg.MaxHeight = o.Height
	}
	c := simrt.New(simrt.Options{N: o.N, Seed: o.Seed, Config: cfg, Bulk: true})
	nw := &SimNetwork{cluster: c}
	for _, nd := range c.Nodes {
		nw.services = append(nw.services, dht.Attach(nd))
	}
	c.StartAll()
	c.Run(8 * time.Second)
	return nw, nil
}

// Run advances the simulated clock by d.
func (nw *SimNetwork) Run(d time.Duration) { nw.cluster.Run(d) }

// Now returns the current virtual time.
func (nw *SimNetwork) Now() time.Duration { return nw.cluster.Kernel.Now() }

// N returns the total number of peers (alive or dead).
func (nw *SimNetwork) N() int { return len(nw.cluster.Nodes) }

// AliveCount returns the number of live peers.
func (nw *SimNetwork) AliveCount() int { return nw.cluster.AliveCount() }

// NodeID returns peer i's coordinate.
func (nw *SimNetwork) NodeID(i int) ID { return nw.cluster.Nodes[i].ID() }

// NodeLevel returns peer i's current hierarchy level.
func (nw *SimNetwork) NodeLevel(i int) int { return int(nw.cluster.Nodes[i].MaxLevel()) }

// Alive reports whether peer i is up.
func (nw *SimNetwork) Alive(i int) bool { return nw.cluster.Alive(nw.cluster.Nodes[i]) }

// Levels returns the number of peers at each hierarchy level.
func (nw *SimNetwork) Levels() map[int]int {
	out := map[int]int{}
	for _, nd := range nw.cluster.AliveNodes() {
		out[int(nd.MaxLevel())]++
	}
	return out
}

// Kill fail-stops peer i (no goodbye messages), as in the paper's
// robustness evaluation.
func (nw *SimNetwork) Kill(i int) { nw.cluster.Kill(nw.cluster.Nodes[i]) }

// KillRandomFraction kills the given fraction of the initial population at
// random and returns how many peers were killed.
func (nw *SimNetwork) KillRandomFraction(frac float64) int {
	rng := nw.cluster.Rand()
	want := int(frac * float64(nw.N()))
	killed := 0
	for killed < want && nw.AliveCount() > 1 {
		nd := nw.cluster.Nodes[rng.Intn(nw.N())]
		if nw.cluster.Alive(nd) {
			nw.cluster.Kill(nd)
			killed++
		}
	}
	return killed
}

// ErrDead is returned for operations on a killed peer.
var ErrDead = errors.New("treep: peer is dead")

// Lookup resolves target from peer origin using the given algorithm,
// advancing the simulation until the result is known.
func (nw *SimNetwork) Lookup(origin int, target ID, algo Algo) (LookupResult, error) {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return LookupResult{}, ErrDead
	}
	var res LookupResult
	done := false
	nd.Lookup(target, algo, func(r LookupResult) { res = r; done = true })
	deadline := nw.Now() + nd.Config().LookupTimeout + 2*time.Second
	for !done && nw.Now() < deadline {
		nw.cluster.Run(100 * time.Millisecond)
	}
	if !done {
		return LookupResult{Status: core.LookupTimeout}, nil
	}
	return res, nil
}

// Put stores a key/value pair through peer origin's DHT service.
func (nw *SimNetwork) Put(origin int, key, value []byte) error {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return ErrDead
	}
	var err error
	done := false
	nw.services[origin].Put(key, value, func(e error) { err = e; done = true })
	nw.drive(&done)
	if !done {
		return dht.ErrTimeout
	}
	return err
}

// Get fetches a key through peer origin's DHT service.
func (nw *SimNetwork) Get(origin int, key []byte) ([]byte, error) {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return nil, ErrDead
	}
	var val []byte
	var err error
	done := false
	nw.services[origin].Get(key, func(v []byte, e error) { val, err, done = v, e, true })
	nw.drive(&done)
	if !done {
		return nil, dht.ErrTimeout
	}
	return val, err
}

// Directory returns a discovery/load-balancing client bound to peer i.
func (nw *SimNetwork) Directory(i int) *Directory {
	return &Directory{nw: nw, dir: dget.NewDirectory(nw.services[i])}
}

// drive advances the simulation until *done or a generous deadline.
func (nw *SimNetwork) drive(done *bool) {
	deadline := nw.Now() + 30*time.Second
	for !*done && nw.Now() < deadline {
		nw.cluster.Run(100 * time.Millisecond)
	}
}

// Directory is a synchronous facade over the discovery layer.
type Directory struct {
	nw  *SimNetwork
	dir *dget.Directory
}

// Advertise registers a resource under its attributes.
func (d *Directory) Advertise(res Resource) error {
	var err error
	done := false
	d.dir.Advertise(res, func(e error) { err = e; done = true })
	d.nw.drive(&done)
	if !done {
		return dht.ErrTimeout
	}
	return err
}

// Discover lists resources advertised under attribute k=v.
func (d *Directory) Discover(k, v string) ([]Resource, error) {
	var out []Resource
	var err error
	done := false
	d.dir.Discover(k, v, func(rs []Resource, e error) { out, err, done = rs, e, true })
	d.nw.drive(&done)
	if !done {
		return nil, dht.ErrTimeout
	}
	return out, err
}

// PickLeastLoaded returns the matching resource with the most head-room.
func (d *Directory) PickLeastLoaded(k, v string) (Resource, error) {
	var out Resource
	var err error
	done := false
	d.dir.PickLeastLoaded(k, v, func(r Resource, e error) { out, err, done = r, e, true })
	d.nw.drive(&done)
	if !done {
		return Resource{}, dht.ErrTimeout
	}
	return out, err
}

// --- scenarios and invariants -------------------------------------------------

// ScenarioPhase is one segment of a scripted workload timeline; the
// concrete phase types below compose freely. See RunScenario.
type ScenarioPhase = scenario.Phase

// SettlePhase runs the overlay quietly (maintenance and repair only).
type SettlePhase = scenario.Settle

// ChurnPhase injects continuous Poisson joins and departures; joined
// peers are brand-new nodes bootstrapping through the live overlay.
type ChurnPhase = scenario.Churn

// FlashCrowdPhase is a mass-arrival burst.
type FlashCrowdPhase = scenario.FlashCrowd

// ZoneFailurePhase fail-stops every peer in a contiguous slice of the ID
// space (correlated failure; see ZoneFraction).
type ZoneFailurePhase = scenario.ZoneFailure

// PartitionHealPhase splits the network at a coordinate, holds the
// partition, then heals it.
type PartitionHealPhase = scenario.PartitionHeal

// RevivalWavePhase brings killed peers back; each rejoins through a live
// bootstrap.
type RevivalWavePhase = scenario.RevivalWave

// ScenarioResult reports a scenario run: event counts, mid-run invariant
// samples, and the final invariant evaluation.
type ScenarioResult = scenario.Result

// InvariantViolation is one broken overlay invariant (ring closure,
// tessellation coverage, parent/child consistency, lookup-loop freedom).
type InvariantViolation = scenario.Violation

// ZoneFraction builds the ID-space region [lo, hi] from fractions in
// [0, 1], for ZoneFailurePhase.
func ZoneFraction(lo, hi float64) idspace.Region { return scenario.ZoneFraction(lo, hi) }

// RunScenario plays a scripted workload timeline against the network:
// live churn with dynamic joins, flash crowds, correlated zone failures,
// partitions, revival waves. Runtime invariant checkers sample the
// overlay every two virtual seconds and once more at the end; the result
// carries every violation found. Peers joined by the scenario are full
// protocol nodes and are attached to the DHT service layer when the
// scenario completes.
func (nw *SimNetwork) RunScenario(phases ...ScenarioPhase) *ScenarioResult {
	res := scenario.Run(nw.cluster, scenario.Options{
		Checkers:    scenario.AllCheckers(),
		SampleEvery: 2 * time.Second,
	}, phases...)
	for i := len(nw.services); i < len(nw.cluster.Nodes); i++ {
		nw.services = append(nw.services, dht.Attach(nw.cluster.Nodes[i]))
	}
	return res
}

// CheckInvariants evaluates every runtime invariant checker against the
// overlay's current state and returns the violations (nil when healthy).
func (nw *SimNetwork) CheckInvariants() []InvariantViolation {
	return scenario.NewEngine(nw.cluster, scenario.Options{
		Checkers: scenario.AllCheckers(),
	}).CheckNow()
}

// UDPOptions configures a real TreeP node on a UDP socket.
type UDPOptions struct {
	// Bind is the listen address, e.g. "127.0.0.1:0".
	Bind string
	// ID is the node's coordinate; zero means hash the bound address.
	ID ID
	// Seed feeds the node's random stream (default: derived from address).
	Seed int64
}

// UDPNode is a TreeP peer on a real socket.
type UDPNode struct {
	tr *udptransport.Transport
}

// StartUDPNode binds the socket and starts the node's maintenance.
func StartUDPNode(o UDPOptions) (*UDPNode, error) {
	if o.Bind == "" {
		o.Bind = "127.0.0.1:0"
	}
	cfg := core.Defaults()
	cfg.ID = o.ID
	tr, err := udptransport.Listen(cfg, o.Bind, o.Seed)
	if err != nil {
		return nil, err
	}
	if o.ID == 0 {
		// Re-create with the address-derived ID now that the port is known.
		tr.Close()
		cfg.ID = idspace.HashAddr(udptransport.UintToAddr(tr.OverlayAddr()).String())
		tr, err = udptransport.Listen(cfg, udptransport.UintToAddr(tr.OverlayAddr()).String(), o.Seed)
		if err != nil {
			return nil, err
		}
	}
	if err := tr.Start(); err != nil {
		tr.Close()
		return nil, err
	}
	return &UDPNode{tr: tr}, nil
}

// Addr returns the node's packed overlay address (give it to peers as
// their bootstrap).
func (u *UDPNode) Addr() uint64 { return u.tr.OverlayAddr() }

// Join bootstraps through a peer's overlay address.
func (u *UDPNode) Join(bootstrap uint64) error { return u.tr.Join(bootstrap) }

// Lookup resolves target over the real network, blocking up to the node's
// lookup timeout.
func (u *UDPNode) Lookup(target ID, algo Algo) (LookupResult, error) {
	resCh := make(chan LookupResult, 1)
	err := u.tr.Do(func(n *core.Node) {
		n.Lookup(target, algo, func(r LookupResult) { resCh <- r })
	})
	if err != nil {
		return LookupResult{}, err
	}
	select {
	case r := <-resCh:
		return r, nil
	case <-time.After(15 * time.Second):
		return LookupResult{Status: core.LookupTimeout}, nil
	}
}

// ID returns the node's coordinate.
func (u *UDPNode) ID() ID {
	var id ID
	_ = u.tr.Do(func(n *core.Node) { id = n.ID() })
	return id
}

// Level returns the node's current hierarchy level.
func (u *UDPNode) Level() int {
	var lvl int
	_ = u.tr.Do(func(n *core.Node) { lvl = int(n.MaxLevel()) })
	return lvl
}

// PeerCount returns the size of the node's level-0 table.
func (u *UDPNode) PeerCount() int {
	var c int
	_ = u.tr.Do(func(n *core.Node) { c = n.Table().Level0.Len() })
	return c
}

// Close shuts the node down.
func (u *UDPNode) Close() { u.tr.Close() }
