// Package treep is a Go implementation of TreeP, the tree-based
// peer-to-peer overlay of Hudzia, Kechadi and Ottewill (CLUSTER 2005).
//
// TreeP arranges peers in a B+tree-like hierarchy over a 1-D ID space:
// every peer sits on the level-0 ring, capable peers are elected upward to
// tessellate the space at each level, and lookups route through the
// hierarchy in O(log n) hops with strong resilience to failures. The
// overlay was designed as the discovery and load-balancing substrate for
// grid middleware; this package exposes that functionality plus the DHT
// extension the paper describes.
//
// Two runtimes are provided:
//
//   - a deterministic simulated network (NewSimNetwork) used by the
//     examples, tests and the paper-reproduction benchmarks, and
//   - a real UDP transport (StartUDPNode) running the identical protocol
//     state machines on sockets.
//
// See DESIGN.md for the paper-to-code map and EXPERIMENTS.md for the
// reproduction results.
package treep

import (
	"errors"
	"time"

	"treep/internal/core"
	"treep/internal/dget"
	"treep/internal/dht"
	"treep/internal/idspace"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/scenario"
	"treep/internal/simrt"
	"treep/internal/udptransport"
)

// ID is a coordinate in TreeP's 1-D identifier space.
type ID = idspace.ID

// HashKey maps an arbitrary key into the ID space (used for DHT keys and
// discovery attributes).
func HashKey(key []byte) ID { return idspace.HashKey(key) }

// Algo selects a lookup algorithm from §III.f of the paper.
type Algo = proto.Algo

// Lookup algorithms.
const (
	// AlgoG is the greedy algorithm with the halving-distance rule.
	AlgoG = proto.AlgoG
	// AlgoNG is the non-greedy variant (first improving neighbour).
	AlgoNG = proto.AlgoNG
	// AlgoNGSA is non-greedy with fall-back alternates in the request.
	AlgoNGSA = proto.AlgoNGSA
)

// LookupResult reports a resolved lookup.
type LookupResult = core.LookupResult

// Lookup outcome statuses.
const (
	LookupFound    = core.LookupFound
	LookupNotFound = core.LookupNotFound
	LookupTimeout  = core.LookupTimeout
)

// Resource is a discoverable grid entity (see Directory).
type Resource = dget.Resource

// ChildPolicy decides each node's maximum child count nc.
type ChildPolicy = nodeprof.ChildPolicy

// FixedChildren returns the paper's first evaluation case: nc fixed.
func FixedChildren(nc int) ChildPolicy { return nodeprof.FixedPolicy{NC: nc} }

// CapacityChildren returns the paper's second case: nc scaled between min
// and max by node capability.
func CapacityChildren(min, max int) ChildPolicy { return nodeprof.CapacityPolicy{Min: min, Max: max} }

// SimOptions configures a simulated TreeP network.
type SimOptions struct {
	// N is the number of peers (required).
	N int
	// Seed makes the whole run reproducible (default 1).
	Seed int64
	// Children is the max-children policy (default FixedChildren(4)).
	Children ChildPolicy
	// Height caps the hierarchy height h (default 6, the paper's setting).
	Height uint8
}

// Record is a versioned DHT record: readers that intend a conditional
// write (PutIf) carry its Version as their base.
type Record = dht.Record

// AnyVersion is the PutIf base matching only a key with no record yet.
const AnyVersion = dht.AnyVersion

// Storage errors.
var (
	// ErrConflict: a PutIf base version no longer matches; re-read and
	// retry the read-modify-write.
	ErrConflict = dht.ErrConflict
	// ErrNotFound: the key's owner has no record for it.
	ErrNotFound = dht.ErrNotFound
)

// SimNetwork is a deterministic in-process TreeP deployment. All methods
// are synchronous: they advance the simulation's virtual clock as needed.
// SimNetwork is not safe for concurrent use.
type SimNetwork struct {
	cluster  *simrt.Cluster
	services []*dht.Service
	storage  *scenario.Storage
}

// NewSimNetwork builds a steady-state network of o.N peers, attaches a DHT
// service to each, starts the maintenance protocol and lets it settle.
func NewSimNetwork(o SimOptions) (*SimNetwork, error) {
	if o.N < 2 {
		return nil, errors.New("treep: need at least 2 nodes")
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	cfg := core.Defaults()
	if o.Children != nil {
		cfg.ChildPolicy = o.Children
	}
	if o.Height != 0 {
		cfg.MaxHeight = o.Height
	}
	c := simrt.New(simrt.Options{N: o.N, Seed: o.Seed, Config: cfg, Bulk: true})
	nw := &SimNetwork{cluster: c, storage: scenario.NewStorage(0)}
	for _, nd := range c.Nodes {
		s := dht.Attach(nd)
		nw.services = append(nw.services, s)
		nw.storage.Bind(s)
	}
	c.StartAll()
	c.Run(8 * time.Second)
	return nw, nil
}

// Run advances the simulated clock by d.
func (nw *SimNetwork) Run(d time.Duration) { nw.cluster.Run(d) }

// Now returns the current virtual time.
func (nw *SimNetwork) Now() time.Duration { return nw.cluster.Kernel.Now() }

// N returns the total number of peers (alive or dead).
func (nw *SimNetwork) N() int { return len(nw.cluster.Nodes) }

// AliveCount returns the number of live peers.
func (nw *SimNetwork) AliveCount() int { return nw.cluster.AliveCount() }

// NodeID returns peer i's coordinate.
func (nw *SimNetwork) NodeID(i int) ID { return nw.cluster.Nodes[i].ID() }

// NodeLevel returns peer i's current hierarchy level.
func (nw *SimNetwork) NodeLevel(i int) int { return int(nw.cluster.Nodes[i].MaxLevel()) }

// Alive reports whether peer i is up.
func (nw *SimNetwork) Alive(i int) bool { return nw.cluster.Alive(nw.cluster.Nodes[i]) }

// Levels returns the number of peers at each hierarchy level.
func (nw *SimNetwork) Levels() map[int]int {
	out := map[int]int{}
	for _, nd := range nw.cluster.AliveNodes() {
		out[int(nd.MaxLevel())]++
	}
	return out
}

// Kill fail-stops peer i (no goodbye messages), as in the paper's
// robustness evaluation.
func (nw *SimNetwork) Kill(i int) { nw.cluster.Kill(nw.cluster.Nodes[i]) }

// KillRandomFraction kills the given fraction of the initial population at
// random and returns how many peers were killed.
func (nw *SimNetwork) KillRandomFraction(frac float64) int {
	rng := nw.cluster.Rand()
	want := int(frac * float64(nw.N()))
	killed := 0
	for killed < want && nw.AliveCount() > 1 {
		nd := nw.cluster.Nodes[rng.Intn(nw.N())]
		if nw.cluster.Alive(nd) {
			nw.cluster.Kill(nd)
			killed++
		}
	}
	return killed
}

// ErrDead is returned for operations on a killed peer.
var ErrDead = errors.New("treep: peer is dead")

// Lookup resolves target from peer origin using the given algorithm,
// advancing the simulation until the result is known.
func (nw *SimNetwork) Lookup(origin int, target ID, algo Algo) (LookupResult, error) {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return LookupResult{}, ErrDead
	}
	var res LookupResult
	done := false
	nd.Lookup(target, algo, func(r LookupResult) { res = r; done = true })
	deadline := nw.Now() + nd.Config().LookupTimeout + 2*time.Second
	for !done && nw.Now() < deadline {
		nw.cluster.Run(100 * time.Millisecond)
	}
	if !done {
		return LookupResult{Status: core.LookupTimeout}, nil
	}
	return res, nil
}

// Put stores a key/value pair through peer origin's DHT service.
func (nw *SimNetwork) Put(origin int, key, value []byte) error {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return ErrDead
	}
	var err error
	done := false
	nw.services[origin].Put(key, value, func(e error) { err = e; done = true })
	nw.drive(&done)
	if !done {
		return dht.ErrTimeout
	}
	return err
}

// Get fetches a key through peer origin's DHT service.
func (nw *SimNetwork) Get(origin int, key []byte) ([]byte, error) {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return nil, ErrDead
	}
	var val []byte
	var err error
	done := false
	nw.services[origin].Get(key, func(v []byte, e error) { val, err, done = v, e, true })
	nw.drive(&done)
	if !done {
		return nil, dht.ErrTimeout
	}
	return val, err
}

// GetRecord fetches a key with its version through peer origin's DHT
// service, for read-modify-write sequences ending in PutIf.
func (nw *SimNetwork) GetRecord(origin int, key []byte) (Record, error) {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return Record{}, ErrDead
	}
	var rec Record
	var err error
	done := false
	nw.services[origin].GetRecord(key, func(r Record, e error) { rec, err, done = r, e, true })
	nw.drive(&done)
	if !done {
		return Record{}, dht.ErrTimeout
	}
	return rec, err
}

// PutIf stores key conditionally on the owner's version matching base
// (compare-and-swap; AnyVersion for "no record yet"). On ErrConflict,
// re-read with GetRecord and retry. Returns the new version on success.
func (nw *SimNetwork) PutIf(origin int, key, value []byte, base uint64) (uint64, error) {
	nd := nw.cluster.Nodes[origin]
	if !nw.cluster.Alive(nd) {
		return 0, ErrDead
	}
	var version uint64
	var err error
	done := false
	nw.services[origin].PutIf(key, value, base, func(v uint64, e error) { version, err, done = v, e, true })
	nw.drive(&done)
	if !done {
		return 0, dht.ErrTimeout
	}
	return version, err
}

// Directory returns a discovery/load-balancing client bound to peer i.
func (nw *SimNetwork) Directory(i int) *Directory {
	return &Directory{nw: nw, dir: dget.NewDirectory(nw.services[i])}
}

// drive advances the simulation until *done or a generous deadline.
func (nw *SimNetwork) drive(done *bool) {
	deadline := nw.Now() + 30*time.Second
	for !*done && nw.Now() < deadline {
		nw.cluster.Run(100 * time.Millisecond)
	}
}

// Directory is a synchronous facade over the discovery layer.
type Directory struct {
	nw  *SimNetwork
	dir *dget.Directory
}

// Advertise registers a resource under its attributes.
func (d *Directory) Advertise(res Resource) error {
	var err error
	done := false
	d.dir.Advertise(res, func(e error) { err = e; done = true })
	d.nw.drive(&done)
	if !done {
		return dht.ErrTimeout
	}
	return err
}

// Discover lists resources advertised under attribute k=v.
func (d *Directory) Discover(k, v string) ([]Resource, error) {
	var out []Resource
	var err error
	done := false
	d.dir.Discover(k, v, func(rs []Resource, e error) { out, err, done = rs, e, true })
	d.nw.drive(&done)
	if !done {
		return nil, dht.ErrTimeout
	}
	return out, err
}

// PickLeastLoaded returns the matching resource with the most head-room.
func (d *Directory) PickLeastLoaded(k, v string) (Resource, error) {
	var out Resource
	var err error
	done := false
	d.dir.PickLeastLoaded(k, v, func(r Resource, e error) { out, err, done = r, e, true })
	d.nw.drive(&done)
	if !done {
		return Resource{}, dht.ErrTimeout
	}
	return out, err
}

// --- scenarios and invariants -------------------------------------------------

// ScenarioPhase is one segment of a scripted workload timeline; the
// concrete phase types below compose freely. See RunScenario.
type ScenarioPhase = scenario.Phase

// SettlePhase runs the overlay quietly (maintenance and repair only).
type SettlePhase = scenario.Settle

// ChurnPhase injects continuous Poisson joins and departures; joined
// peers are brand-new nodes bootstrapping through the live overlay.
type ChurnPhase = scenario.Churn

// FlashCrowdPhase is a mass-arrival burst.
type FlashCrowdPhase = scenario.FlashCrowd

// ZoneFailurePhase fail-stops every peer in a contiguous slice of the ID
// space (correlated failure; see ZoneFraction).
type ZoneFailurePhase = scenario.ZoneFailure

// PartitionHealPhase splits the network at a coordinate, holds the
// partition, then heals it.
type PartitionHealPhase = scenario.PartitionHeal

// IslandsMergePhase fragments the overlay into two interleaved islands
// (split by address parity), lets each converge into its own ring, then
// re-merges them through exactly one bridge link — the worst case for
// the partition-merge protocol.
type IslandsMergePhase = scenario.IslandsMerge

// RevivalWavePhase brings killed peers back; each rejoins through a live
// bootstrap.
type RevivalWavePhase = scenario.RevivalWave

// StoreRecordsPhase seeds DHT records through random live writers; the
// scenario's durability checkers judge them at every sample.
type StoreRecordsPhase = scenario.StoreRecords

// StorageWorkloadPhase drives a continuous put/get mix, optionally with
// concurrent membership churn.
type StorageWorkloadPhase = scenario.StorageWorkload

// ScenarioResult reports a scenario run: event counts, mid-run invariant
// samples, and the final invariant evaluation.
type ScenarioResult = scenario.Result

// InvariantViolation is one broken overlay invariant (ring closure,
// tessellation coverage, parent/child consistency, lookup-loop freedom).
type InvariantViolation = scenario.Violation

// ZoneFraction builds the ID-space region [lo, hi] from fractions in
// [0, 1], for ZoneFailurePhase.
func ZoneFraction(lo, hi float64) idspace.Region { return scenario.ZoneFraction(lo, hi) }

// RunScenario plays a scripted workload timeline against the network:
// live churn with dynamic joins, flash crowds, correlated zone failures,
// partitions, revival waves, storage seeding and put/get workloads.
// Runtime invariant checkers — including the storage durability checkers
// when the timeline wrote records — sample the overlay every two virtual
// seconds and once more at the end; the result carries every violation
// found. Peers joined by the scenario are full protocol nodes with their
// own DHT services from the moment they join.
func (nw *SimNetwork) RunScenario(phases ...ScenarioPhase) *ScenarioResult {
	res := scenario.Run(nw.cluster, nw.scenarioOptions(), phases...)
	for i := len(nw.services); i < len(nw.cluster.Nodes); i++ {
		nd := nw.cluster.Nodes[i]
		s := nw.storage.Service(nd.Addr())
		if s == nil {
			s = dht.Attach(nd)
			nw.storage.Bind(s)
		}
		nw.services = append(nw.services, s)
	}
	return res
}

// scenarioOptions is the standard checker + storage configuration.
func (nw *SimNetwork) scenarioOptions() scenario.Options {
	return scenario.Options{
		Checkers:    append(scenario.AllCheckers(), scenario.StorageCheckers(0.99)...),
		SampleEvery: 2 * time.Second,
		Storage:     nw.storage,
	}
}

// CheckInvariants evaluates every runtime invariant checker (storage
// durability included) against the overlay's current state and returns
// the violations (nil when healthy).
func (nw *SimNetwork) CheckInvariants() []InvariantViolation {
	return scenario.NewEngine(nw.cluster, nw.scenarioOptions()).CheckNow()
}

// UDPOptions configures a real TreeP node on a UDP socket.
type UDPOptions struct {
	// Bind is the listen address, e.g. "127.0.0.1:0".
	Bind string
	// ID is the node's coordinate; zero means hash the bound address.
	ID ID
	// Seed feeds the node's random stream (default: derived from address).
	Seed int64
}

// UDPNode is a TreeP peer on a real socket, with the full storage stack:
// the same DHT service (and service plane under it) that the simulator
// runs, over the binary codec and wall-clock timers.
type UDPNode struct {
	tr  *udptransport.Transport
	dht *dht.Service
}

// StartUDPNode binds the socket and starts the node's maintenance.
func StartUDPNode(o UDPOptions) (*UDPNode, error) {
	if o.Bind == "" {
		o.Bind = "127.0.0.1:0"
	}
	cfg := core.Defaults()
	cfg.ID = o.ID
	tr, err := udptransport.Listen(cfg, o.Bind, o.Seed)
	if err != nil {
		return nil, err
	}
	if o.ID == 0 {
		// Re-create with the address-derived ID now that the port is known.
		tr.Close()
		cfg.ID = idspace.HashAddr(udptransport.UintToAddr(tr.OverlayAddr()).String())
		tr, err = udptransport.Listen(cfg, udptransport.UintToAddr(tr.OverlayAddr()).String(), o.Seed)
		if err != nil {
			return nil, err
		}
	}
	u := &UDPNode{tr: tr}
	if err := tr.Do(func(n *core.Node) { u.dht = dht.Attach(n) }); err != nil {
		tr.Close()
		return nil, err
	}
	if err := tr.Start(); err != nil {
		tr.Close()
		return nil, err
	}
	return u, nil
}

// Addr returns the node's packed overlay address (give it to peers as
// their bootstrap).
func (u *UDPNode) Addr() uint64 { return u.tr.OverlayAddr() }

// Join bootstraps through a peer's overlay address.
func (u *UDPNode) Join(bootstrap uint64) error { return u.tr.Join(bootstrap) }

// Lookup resolves target over the real network, blocking up to the node's
// lookup timeout.
func (u *UDPNode) Lookup(target ID, algo Algo) (LookupResult, error) {
	resCh := make(chan LookupResult, 1)
	err := u.tr.Do(func(n *core.Node) {
		n.Lookup(target, algo, func(r LookupResult) { resCh <- r })
	})
	if err != nil {
		return LookupResult{}, err
	}
	select {
	case r := <-resCh:
		return r, nil
	case <-time.After(15 * time.Second):
		return LookupResult{Status: core.LookupTimeout}, nil
	}
}

// ID returns the node's coordinate.
func (u *UDPNode) ID() ID {
	var id ID
	_ = u.tr.Do(func(n *core.Node) { id = n.ID() })
	return id
}

// Level returns the node's current hierarchy level.
func (u *UDPNode) Level() int {
	var lvl int
	_ = u.tr.Do(func(n *core.Node) { lvl = int(n.MaxLevel()) })
	return lvl
}

// PeerCount returns the size of the node's level-0 table.
func (u *UDPNode) PeerCount() int {
	var c int
	_ = u.tr.Do(func(n *core.Node) { c = n.Table().Level0.Len() })
	return c
}

// WireStats is the transport's cumulative datagram accounting: messages
// in and out, the syscalls they cost (the batch path amortises several
// datagrams per syscall), and the receive-side reject counters.
type WireStats = udptransport.Snapshot

// WireStats returns the node's wire counters. Safe from any goroutine;
// the counters are lock-free atomics, so reading them does not touch the
// node's event loop.
func (u *UDPNode) WireStats() WireStats { return u.tr.Stats() }

// Batched reports whether the kernel batch I/O path (recvmmsg/sendmmsg)
// is active, as opposed to the portable one-datagram-per-syscall
// fallback.
func (u *UDPNode) Batched() bool { return u.tr.Batched() }

// StoredRecords returns the number of DHT records this node holds.
func (u *UDPNode) StoredRecords() int {
	var c int
	_ = u.tr.Do(func(n *core.Node) { c = u.dht.Len() })
	return c
}

// udpOpTimeout generously bounds one blocking storage operation (its own
// lookup + request retries all happen inside it).
const udpOpTimeout = 15 * time.Second

// Put stores a key/value pair through this node over the real network,
// blocking until the owner acknowledges (or the retries are exhausted).
func (u *UDPNode) Put(key, value []byte) error {
	errCh := make(chan error, 1)
	if err := u.tr.Do(func(*core.Node) {
		u.dht.Put(key, value, func(e error) { errCh <- e })
	}); err != nil {
		return err
	}
	select {
	case err := <-errCh:
		return err
	case <-time.After(udpOpTimeout):
		return dht.ErrTimeout
	}
}

// Get fetches a key over the real network.
func (u *UDPNode) Get(key []byte) ([]byte, error) {
	rec, err := u.GetRecord(key)
	return rec.Value, err
}

// GetRecord fetches a key with its version over the real network.
func (u *UDPNode) GetRecord(key []byte) (Record, error) {
	type out struct {
		rec Record
		err error
	}
	ch := make(chan out, 1)
	if err := u.tr.Do(func(*core.Node) {
		u.dht.GetRecord(key, func(r Record, e error) { ch <- out{r, e} })
	}); err != nil {
		return Record{}, err
	}
	select {
	case o := <-ch:
		return o.rec, o.err
	case <-time.After(udpOpTimeout):
		return Record{}, dht.ErrTimeout
	}
}

// PutIf stores key conditionally on base (compare-and-swap; see
// SimNetwork.PutIf) over the real network.
func (u *UDPNode) PutIf(key, value []byte, base uint64) (uint64, error) {
	type out struct {
		version uint64
		err     error
	}
	ch := make(chan out, 1)
	if err := u.tr.Do(func(*core.Node) {
		u.dht.PutIf(key, value, base, func(v uint64, e error) { ch <- out{v, e} })
	}); err != nil {
		return 0, err
	}
	select {
	case o := <-ch:
		return o.version, o.err
	case <-time.After(udpOpTimeout):
		return 0, dht.ErrTimeout
	}
}

// Close gracefully shuts the node down: it announces the departure to its
// peers (so the overlay repairs immediately instead of detecting a
// failure) and then closes the socket. Peers that miss the best-effort
// announcement fall back to the usual failure detection.
func (u *UDPNode) Close() {
	_ = u.tr.Do(func(n *core.Node) { n.Depart() })
	u.tr.Close()
}
